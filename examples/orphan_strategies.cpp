// Orphan handling strategies side by side (paper sections 2.1 and 4.4.7).
//
// A client invokes a slow remote procedure, crashes mid-call, recovers, and
// immediately issues a new call.  The old computation is now an orphan.  We
// run the identical schedule under the three configurable policies and show
// what happens at the server:
//
//   ignore                 -- the orphan runs to completion; its response is
//                             simply discarded by the recovered client
//   interference avoidance -- the new incarnation's call is held until every
//                             old-generation call has drained
//   terminate orphans      -- the orphan's thread is killed on the spot and
//                             the new call proceeds immediately
//
// Run:  build/examples/orphan_strategies
#include <cstdio>
#include <string>
#include <vector>

#include "core/micro/acceptance.h"
#include "core/scenario.h"

using namespace ugrpc;
using namespace ugrpc::core;

namespace {

constexpr OpId kSlowJob{1};

struct Trace {
  std::vector<std::string> lines;
  void log(sim::Scheduler& sched, const std::string& what) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  [%7.1f ms] %s", sim::to_msec(sched.now()), what.c_str());
    lines.emplace_back(buf);
  }
};

void run_policy(OrphanHandling policy, const char* label) {
  Trace trace;
  ScenarioParams p;
  p.num_servers = 1;
  p.config = ConfigBuilder::exactly_once()
                 .reliable_communication(sim::msec(40))
                 .acceptance_limit(1)
                 .orphan_handling(policy)
                 .execution(ExecutionMode::kSerial)
                 .build();
  p.server_app = [&trace](UserProtocol& user, Site& site) {
    user.set_procedure([&trace, &site](OpId, Buffer& args) -> sim::Task<> {
      const std::uint64_t job = Reader(args).u64();
      trace.log(site.scheduler(), "server: job " + std::to_string(job) + " started");
      co_await site.scheduler().sleep_for(sim::msec(120));
      trace.log(site.scheduler(), "server: job " + std::to_string(job) + " FINISHED");
    });
  };
  Scenario s(std::move(p));

  Site& client_site = s.client_site(0);
  s.scheduler().schedule_after(sim::msec(30), [&] {
    trace.log(s.scheduler(), "client: CRASH (job 1 becomes an orphan)");
    client_site.crash();
  });
  s.run_client(0, [&](Client& c) -> sim::Task<> {
    Buffer args;
    Writer(args).u64(1);
    (void)co_await c.call(s.group(), kSlowJob, std::move(args));
  });
  trace.log(s.scheduler(), "client: recovered, issuing job 2");
  client_site.recover();
  Client fresh(client_site);
  CallResult second;
  auto driver = [&](Client& c) -> sim::Task<> {
    Buffer args;
    Writer(args).u64(2);
    second = co_await c.call(s.group(), kSlowJob, std::move(args));
    trace.log(s.scheduler(), "client: job 2 returned " + std::string(to_string(second.status)));
  };
  s.scheduler().spawn(driver(fresh), client_site.domain());
  s.run_for(sim::seconds(3));

  std::printf("%s\n", label);
  for (const std::string& line : trace.lines) std::printf("%s\n", line.c_str());
  std::printf("  server executions observed: %llu\n\n",
              static_cast<unsigned long long>(s.total_server_executions()));
}

}  // namespace

int main() {
  std::printf("=== orphan handling strategies (client crashes 30ms into a 120ms call) ===\n\n");
  run_policy(OrphanHandling::kIgnore, "--- ignore orphans ---");
  run_policy(OrphanHandling::kInterferenceAvoidance, "--- interference avoidance ---");
  run_policy(OrphanHandling::kTerminateOrphans, "--- terminate orphans ---");
  return 0;
}
