// Group RPC as parallel computation (paper section 2.2: group RPC "can be
// used ... to implement parallel computation").
//
// A numerical integration job is multicast to a group of workers.  Each
// worker integrates only its own slice -- it picks the slice from its
// position in the group -- and the Collation micro-protocol sums the partial
// results, so the client receives the complete integral from one group RPC.
// Acceptance=ALL makes the call wait for every partial result.
//
// Run:  build/examples/parallel_compute
#include <cmath>
#include <cstdio>

#include "core/micro/acceptance.h"
#include "core/scenario.h"
#include "stub/stub.h"

using namespace ugrpc;

struct IntegrateJob {
  double lo = 0;
  double hi = 0;
  std::uint64_t steps = 0;
};

namespace ugrpc::stub {
template <>
struct Codec<IntegrateJob> {
  static void encode(Writer& w, const IntegrateJob& j) {
    w.f64(j.lo);
    w.f64(j.hi);
    w.u64(j.steps);
  }
  static IntegrateJob decode(Reader& r) {
    IntegrateJob j;
    j.lo = r.f64();
    j.hi = r.f64();
    j.steps = r.u64();
    return j;
  }
};
}  // namespace ugrpc::stub

constexpr stub::Operation<IntegrateJob, double> kIntegrate{OpId{1}, "integrate"};
constexpr int kWorkers = 5;

int main() {
  // Sum the partial integrals as they arrive; acceptance=ALL waits for
  // every worker's slice.
  auto [fold, init] = stub::typed_collation<double>(
      [](double acc, double part) { return acc + part; }, 0.0);
  const core::Config config = core::ConfigBuilder::at_least_once()
                                  .acceptance_limit(core::kAll)
                                  .collation(std::move(fold), std::move(init))
                                  .build();

  core::ScenarioParams params;
  params.num_servers = kWorkers;
  params.config = config;
  params.server_app = [](core::UserProtocol& user, core::Site& site) {
    auto dispatcher = std::make_shared<stub::Dispatcher>();
    const int rank = static_cast<int>(site.id().value()) - 1;  // 0-based worker index
    dispatcher->handle<IntegrateJob, double>(
        kIntegrate, [rank, &site](IntegrateJob job) -> sim::Task<double> {
          // Worker `rank` integrates its 1/kWorkers slice of [lo, hi].
          const double width = (job.hi - job.lo) / kWorkers;
          const double lo = job.lo + rank * width;
          const std::uint64_t steps = job.steps / kWorkers;
          const double h = width / static_cast<double>(steps);
          double sum = 0;
          for (std::uint64_t i = 0; i < steps; ++i) {
            const double x = lo + (static_cast<double>(i) + 0.5) * h;
            sum += std::sin(x) * h;
          }
          // Charge simulated compute time proportional to the slice.
          co_await site.scheduler().sleep_for(sim::usec(static_cast<std::int64_t>(steps / 100)));
          co_return sum;
        });
    stub::Dispatcher::install_owned(std::move(dispatcher), user);
  };
  core::Scenario scenario(std::move(params));

  const double pi = 3.14159265358979323846;
  scenario.run_client(0, [&](core::Client& client) -> sim::Task<> {
    IntegrateJob job{0.0, pi, 500000};
    const sim::Time t0 = scenario.scheduler().now();
    const auto result = co_await stub::invoke(client, scenario.group(), kIntegrate, job);
    const double elapsed_ms = sim::to_msec(scenario.scheduler().now() - t0);
    std::printf("integral of sin over [0, pi] with %d workers: %.6f (expected 2.0)\n", kWorkers,
                result.value);
    std::printf("status=%s, virtual latency %.2f ms\n",
                std::string(to_string(result.status)).c_str(), elapsed_ms);
  });
  return 0;
}
