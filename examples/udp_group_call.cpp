// Group RPC over real UDP between separate OS processes.
//
// The exact protocol stack the simulator runs -- Site, GrpcComposite, the
// micro-protocols -- booted over net::UdpTransport instead of the simulated
// fabric.  The parent process forks one OS process per server, exchanges
// the ephemeral UDP ports over pipes (no fixed ports, so parallel runs
// cannot collide), then acts as the client: it multicasts each call to the
// server group over 127.0.0.1 and waits for the exactly-once preset's
// accepted reply.
//
//   usage: udp_group_call [--servers N] [--calls N] [--timeout-sec N]
//                         [--trace-out PATH] [--force-retransmit]
//                         [--telemetry-port N] [--port-file PATH]
//                         [--stats-out PATH] [--serve-sec N]
//                         [--flight-dir DIR] [--stall-bound-us N]
//
// --trace-out PATH enables span tracing in every process; each server child
// writes a Perfetto fragment next to PATH, and the parent merges them with
// its own into PATH -- a single Chrome/Perfetto-loadable JSON whose span
// tree crosses the real process boundary (see README "Profiling a call").
// --force-retransmit drops the first call datagram to server 1 before it
// reaches the socket, so the trace demonstrably covers a retransmission
// (loopback UDP never drops on its own).
//
// Live telemetry plane (ISSUE 5): --telemetry-port serves the client site's
// TelemetryHub over HTTP from the transport's poll loop (0 = ephemeral; the
// chosen port is printed and, with --port-file, written for scripts --
// scrape /metrics with curl or watch live with tools/ugrpcstat).
// --serve-sec keeps the client serving that many seconds after the calls
// finish.  --stats-out writes the final metrics JSON.  --flight-dir arms
// the flight recorder (watchdog trips and crash signals dump there);
// --stall-bound-us tightens the stall watchdog's bound so a run with
// --force-retransmit provably trips it (the CI telemetry-smoke job).
//
// Exit status 0 iff every call completed OK with the echoed payload and
// every server process shut down cleanly.  The CI smoke job runs
// `udp_group_call --servers 1 --calls 100` under a hard timeout.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "core/config_builder.h"
#include "core/grpc_state.h"
#include "core/service.h"
#include "core/site.h"
#include "core/telemetry.h"
#include "net/udp_transport.h"
#include "obs/live/flight_recorder.h"
#include "obs/live/telemetry.h"
#include "obs/perfetto.h"
#include "obs/trace.h"

namespace {

using namespace ugrpc;

constexpr GroupId kGroup{1};
constexpr OpId kEcho{7};

ProcessId server_id(int i) { return ProcessId{static_cast<std::uint32_t>(i + 1)}; }

struct Cli {
  int servers = 2;
  int calls = 20;
  int timeout_sec = 30;
  std::string trace_out;          ///< empty = tracing off
  bool force_retransmit = false;  ///< drop the first call datagram to server 1
  int telemetry_port = -1;        ///< -1 = off, 0 = ephemeral
  std::string port_file;          ///< write the bound telemetry port here
  std::string stats_out;          ///< write final metrics JSON here
  int serve_sec = 0;              ///< keep serving after the calls finish
  std::string flight_dir;         ///< arm the flight recorder
  long stall_bound_us = 0;        ///< 0 = config-derived watchdog bound

  /// Any flag that needs the client's TelemetryHub?
  [[nodiscard]] bool telemetry_on() const {
    return telemetry_port >= 0 || !stats_out.empty() || !flight_dir.empty();
  }
};

Cli parse(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> int { return i + 1 < argc ? std::atoi(argv[++i]) : 0; };
    if (arg == "--servers") cli.servers = next();
    else if (arg == "--calls") cli.calls = next();
    else if (arg == "--timeout-sec") cli.timeout_sec = next();
    else if (arg == "--trace-out" && i + 1 < argc) cli.trace_out = argv[++i];
    else if (arg == "--force-retransmit") cli.force_retransmit = true;
    else if (arg == "--telemetry-port") cli.telemetry_port = next();
    else if (arg == "--port-file" && i + 1 < argc) cli.port_file = argv[++i];
    else if (arg == "--stats-out" && i + 1 < argc) cli.stats_out = argv[++i];
    else if (arg == "--serve-sec") cli.serve_sec = next();
    else if (arg == "--flight-dir" && i + 1 < argc) cli.flight_dir = argv[++i];
    else if (arg == "--stall-bound-us") cli.stall_bound_us = next();
    else {
      std::fprintf(stderr,
                   "usage: udp_group_call [--servers N] [--calls N] [--timeout-sec N]"
                   " [--trace-out PATH] [--force-retransmit] [--telemetry-port N]"
                   " [--port-file PATH] [--stats-out PATH] [--serve-sec N]"
                   " [--flight-dir DIR] [--stall-bound-us N]\n");
      std::exit(2);
    }
  }
  if (cli.servers < 1 || cli.calls < 1 || cli.timeout_sec < 1 || cli.serve_sec < 0 ||
      cli.stall_bound_us < 0) {
    std::exit(2);
  }
  return cli;
}

/// Per-process Perfetto fragment file (children write, parent merges).
std::string fragment_path(const Cli& cli, int index) {
  return cli.trace_out + ".frag" + std::to_string(index);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

void write_u16(int fd, std::uint16_t v) {
  const ssize_t n = ::write(fd, &v, sizeof(v));
  if (n != sizeof(v)) { std::fprintf(stderr, "pid %d: write_u16 failed: %s\n", getpid(), std::strerror(errno)); std::exit(1); }
}

std::uint16_t read_u16(int fd) {
  std::uint16_t v = 0;
  ssize_t n = ::read(fd, &v, sizeof(v));
  if (n != sizeof(v)) { std::fprintf(stderr, "pid %d: read_u16 got %zd: %s\n", getpid(), n, std::strerror(errno)); std::exit(1); }
  return v;
}

/// Server child: boot a Site over UDP, serve until the control pipe closes.
[[noreturn]] void run_server(const Cli& cli, int index, int port_out_fd, int ctl_fd) {
  const ProcessId my_id = server_id(index);
  const ProcessId client_id{static_cast<std::uint32_t>(cli.servers + 1)};

  net::UdpTransport::Options opt;
  opt.seed = my_id.value();
  net::UdpTransport transport(opt);

  std::set<ProcessId> known;
  std::vector<ProcessId> members;
  for (int i = 0; i < cli.servers; ++i) {
    known.insert(server_id(i));
    members.push_back(server_id(i));
  }
  known.insert(client_id);

  core::Site site(transport, my_id, core::ConfigBuilder::exactly_once().build(), known);
  obs::Tracer tracer;
  if (!cli.trace_out.empty()) {
    transport.set_tracer(&tracer);
    site.set_tracer(&tracer);
  }
  write_u16(port_out_fd, transport.local_port(my_id));
  ::close(port_out_fd);

  // Learn the client's and the other servers' ports from the parent.
  transport.add_peer(client_id, "127.0.0.1", read_u16(ctl_fd));
  for (int i = 0; i < cli.servers; ++i) {
    const std::uint16_t port = read_u16(ctl_fd);
    if (server_id(i) != my_id) transport.add_peer(server_id(i), "127.0.0.1", port);
  }
  transport.define_group(kGroup, members);

  site.set_app([](core::UserProtocol& user, core::Site&) {
    user.set_procedure([](OpId, Buffer&) -> sim::Task<> { co_return; });  // echo
  });
  site.boot();

  // Handshake done; from here control reads only poll for the parent's EOF.
  ::fcntl(ctl_fd, F_SETFL, O_NONBLOCK);

  // Serve until the parent closes its end of the control pipe (EOF).
  for (;;) {
    transport.run_for(sim::msec(20));
    char byte;
    const ssize_t n = ::read(ctl_fd, &byte, 1);  // ctl_fd is non-blocking
    if (n == 0) break;                           // EOF: parent is done
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
  }
  if (!cli.trace_out.empty()) {
    // Leave our slice of the distributed trace where the parent can find it.
    if (!write_file(fragment_path(cli, index), obs::export_perfetto_fragment(tracer))) {
      std::fprintf(stderr, "pid %d: cannot write trace fragment\n", getpid());
      std::exit(1);
    }
  }
  std::exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);
  const ProcessId client_id{static_cast<std::uint32_t>(cli.servers + 1)};

  struct Child {
    pid_t pid;
    int port_fd;  // child -> parent: its ephemeral port
    int ctl_fd;   // parent -> child: peer ports, then EOF to shut down
  };
  std::vector<Child> children;
  for (int i = 0; i < cli.servers; ++i) {
    int port_pipe[2];
    int ctl_pipe[2];
    if (::pipe(port_pipe) != 0 || ::pipe(ctl_pipe) != 0) return 1;
    const pid_t pid = ::fork();
    if (pid < 0) return 1;
    if (pid == 0) {
      ::close(port_pipe[0]);
      ::close(ctl_pipe[1]);
      for (const Child& c : children) {  // inherited older siblings' fds
        ::close(c.port_fd);
        ::close(c.ctl_fd);
      }
      run_server(cli, i, port_pipe[1], ctl_pipe[0]);
    }
    ::close(port_pipe[1]);
    ::close(ctl_pipe[0]);
    children.push_back(Child{pid, port_pipe[0], ctl_pipe[1]});
  }

  // Client side: attach, learn every server's port, tell every server about
  // the client and its peers.
  net::UdpTransport::Options opt;
  opt.seed = client_id.value();
  net::UdpTransport transport(opt);

  std::set<ProcessId> known;
  std::vector<ProcessId> members;
  for (int i = 0; i < cli.servers; ++i) {
    known.insert(server_id(i));
    members.push_back(server_id(i));
  }
  known.insert(client_id);

  core::Site site(transport, client_id, core::ConfigBuilder::exactly_once().build(), known);
  obs::Tracer tracer;
  if (!cli.trace_out.empty() || cli.telemetry_on()) {
    // Telemetry implies tracing: the hub's span attribution and flight-dump
    // rings come from the same tracer the spans land in.
    transport.set_tracer(&tracer);
    site.set_tracer(&tracer);
  }

  // Live telemetry plane for the client site (constructed before boot() so
  // the hot-path counter pointer is wired into the stack).
  obs::live::TelemetryHub hub;
  std::unique_ptr<core::SiteTelemetry> telemetry;
  if (cli.telemetry_on()) {
    hub.set_tracer(&tracer);
    core::SiteTelemetry::Options wopts;
    if (cli.stall_bound_us > 0) {
      wopts.bound_override = sim::usec(cli.stall_bound_us);
      wopts.stall_multiplier = 1.0;
      wopts.scan_period = sim::msec(5);  // sweep fast enough to catch the stall
    }
    telemetry = std::make_unique<core::SiteTelemetry>(hub, site, wopts);
    if (!cli.flight_dir.empty()) {
      hub.set_flight_dir(cli.flight_dir);
      obs::live::install_crash_handler(&hub);
    }
    if (cli.telemetry_port >= 0) {
      std::string err;
      const std::uint16_t port = transport.serve_telemetry(
          hub, static_cast<std::uint16_t>(cli.telemetry_port), "127.0.0.1", &err);
      if (port == 0) {
        std::fprintf(stderr, "udp_group_call: telemetry listener failed: %s\n", err.c_str());
        return 1;
      }
      std::printf("udp_group_call: telemetry on http://127.0.0.1:%u (/metrics, /introspect)\n",
                  port);
      if (!cli.port_file.empty() && !write_file(cli.port_file, std::to_string(port) + "\n")) {
        std::fprintf(stderr, "udp_group_call: cannot write %s\n", cli.port_file.c_str());
        return 1;
      }
    }
  }
  if (cli.force_retransmit) {
    // Drop the first call datagram to server 1 before it reaches the socket:
    // Reliable Communication's 50 ms timer then retransmits it, and with the
    // exactly-once preset's acceptance=ALL the call cannot complete without
    // that retransmission -- so a trace of the run provably contains one.
    transport.set_send_fault(
        [dropped = false](ProcessId, ProcessId to, ProtocolId proto) mutable -> bool {
          if (dropped || to != server_id(0) || proto != core::kGrpcProto) return false;
          dropped = true;
          return true;
        });
  }
  const std::uint16_t client_port = transport.local_port(client_id);

  std::vector<std::uint16_t> server_ports;
  for (const Child& c : children) {
    server_ports.push_back(read_u16(c.port_fd));
    ::close(c.port_fd);
  }
  for (int i = 0; i < cli.servers; ++i) {
    transport.add_peer(server_id(i), "127.0.0.1", server_ports[static_cast<std::size_t>(i)]);
  }
  transport.define_group(kGroup, members);
  for (const Child& c : children) {
    write_u16(c.ctl_fd, client_port);
    for (std::uint16_t port : server_ports) write_u16(c.ctl_fd, port);
  }

  site.boot();
  if (telemetry != nullptr) telemetry->start_watchdog();
  core::Client client(site);

  int ok = 0;
  int bad_payload = 0;
  const FiberId fiber = transport.spawn(
      [](core::Client& c, const Cli& cfg, int& ok_count, int& bad) -> sim::Task<> {
        for (int i = 0; i < cfg.calls; ++i) {
          Buffer args;
          Writer(args).u64(static_cast<std::uint64_t>(i) * 31 + 7);
          const core::CallResult r = co_await c.call(kGroup, kEcho, args);
          if (!r.ok()) continue;
          if (Reader(r.result).u64() == static_cast<std::uint64_t>(i) * 31 + 7) ++ok_count;
          else ++bad;
        }
      }(client, cli, ok, bad_payload),
      site.domain());

  const bool finished = transport.run_until_fiber_done(fiber, sim::seconds(cli.timeout_sec));

  // Keep the telemetry endpoint live for external scrapers (curl, ugrpcstat,
  // the CI smoke job) before tearing anything down.
  if (cli.serve_sec > 0) transport.run_for(sim::seconds(cli.serve_sec));

  bool stats_ok = true;
  if (!cli.stats_out.empty()) {
    stats_ok = write_file(cli.stats_out, hub.metrics_json());
    if (!stats_ok) std::fprintf(stderr, "udp_group_call: cannot write %s\n", cli.stats_out.c_str());
  }

  // Shut the servers down: closing the control pipes EOFs their serve loop.
  for (const Child& c : children) ::close(c.ctl_fd);
  bool children_ok = true;
  for (const Child& c : children) {
    int status = 0;
    if (::waitpid(c.pid, &status, 0) != c.pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      children_ok = false;
    }
  }

  bool trace_ok = true;
  if (!cli.trace_out.empty()) {
    // Children have exited (waitpid above), so their fragments are complete.
    std::vector<std::string> fragments;
    fragments.push_back(obs::export_perfetto_fragment(tracer));
    for (int i = 0; i < cli.servers; ++i) {
      const std::string path = fragment_path(cli, i);
      std::string frag;
      if (read_file(path, frag)) {
        fragments.push_back(std::move(frag));
      } else {
        std::fprintf(stderr, "udp_group_call: missing trace fragment %s\n", path.c_str());
        trace_ok = false;
      }
      ::unlink(path.c_str());
    }
    if (write_file(cli.trace_out, obs::merge_perfetto_fragments(fragments))) {
      std::printf("udp_group_call: wrote merged trace to %s (load it in ui.perfetto.dev "
                  "or chrome://tracing)\n",
                  cli.trace_out.c_str());
    } else {
      std::fprintf(stderr, "udp_group_call: cannot write %s\n", cli.trace_out.c_str());
      trace_ok = false;
    }
  }

  const net::Stats& stats = transport.stats();
  std::printf("udp_group_call: %d/%d calls ok (%d bad payloads) over %d server process(es)\n", ok,
              cli.calls, bad_payload, cli.servers);
  std::printf("  client transport: sent=%llu delivered=%llu dropped=%llu bytes_sent=%llu "
              "bytes_delivered=%llu\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.bytes_delivered));
  if (!finished) std::fprintf(stderr, "udp_group_call: client did not finish before timeout\n");
  if (!children_ok) std::fprintf(stderr, "udp_group_call: a server process exited abnormally\n");
  return (finished && ok == cli.calls && bad_payload == 0 && children_ok && trace_ok && stats_ok)
             ? 0
             : 1;
}
